// Property-based equivalence of the bulk stream protocol (PR 6):
// next_n / drain_into must be observationally identical to repeated
// next(), for every stream shape the library manufactures — including
// randomized chunk partitions with zero-length chunks, ragged tail
// blocks, and non-trivially-destructible element types.
//
// Each seed drives the input data, the pipeline shape coefficients, the
// block size, and the chunk partition, so every case in the sweep is a
// distinct program. PBDS_SEED=N (or --seed N) collapses the sweep to that
// one seed for replay; every assertion carries a SCOPED_TRACE naming the
// seed and the pipeline descriptor.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/block.hpp"
#include "core/delayed.hpp"
#include "memory/counting_allocator.hpp"
#include "random/rng.hpp"
#include "stream/streams.hpp"

namespace {

using namespace pbds;  // NOLINT
using std::int64_t;

// --- raw slot helper ---------------------------------------------------------

// Uninitialized storage for exactly `n` T slots, with explicit destruction
// of the constructed prefix — what next_n's contract ("construct into
// uninitialized memory") requires of callers, and what lets the tests use
// non-trivially-destructible element types without UB.
template <typename T>
class raw_slots {
 public:
  explicit raw_slots(std::size_t n)
      : n_(n),
        mem_(n == 0 ? nullptr
                    : ::operator new(n * sizeof(T), std::align_val_t{
                                                        alignof(T)})) {}
  ~raw_slots() {
    for (std::size_t i = 0; i < constructed_; ++i) data()[i].~T();
    if (mem_ != nullptr)
      ::operator delete(mem_, std::align_val_t{alignof(T)});
  }
  raw_slots(const raw_slots&) = delete;
  raw_slots& operator=(const raw_slots&) = delete;

  [[nodiscard]] T* data() { return static_cast<T*>(mem_); }
  // Callers report how many slots they constructed so the destructor can
  // clean up exactly those.
  void mark_constructed(std::size_t c) { constructed_ = c; }

 private:
  std::size_t n_;
  void* mem_;
  std::size_t constructed_ = 0;
};

// --- the core property -------------------------------------------------------

// For every block of `bd`: the generic element-at-a-time protocol, a
// whole-block drain_into, and a randomly chunked sequence of next_n calls
// (chunks may be zero-length) must produce identical elements.
template <typename Bid>
void expect_block_bulk_equivalence(const Bid& bd, random::rng gen) {
  using T = typename Bid::value_type;
  std::size_t nb = bd.num_blocks();
  for (std::size_t j = 0; j < nb; ++j) {
    std::size_t len = bd.block_length(j);
    // Reference: forced generic fallback via repeated next().
    std::vector<T> want;
    want.reserve(len);
    {
      stream::scoped_bulk_disable off;
      auto st = bd.block(j);
      for (std::size_t k = 0; k < len; ++k) want.push_back(st.next());
    }
    // Whole-block bulk drain.
    {
      raw_slots<T> got(len);
      auto st = bd.block(j);
      stream::drain_into(st, got.data(), len);
      got.mark_constructed(len);
      for (std::size_t k = 0; k < len; ++k) {
        ASSERT_EQ(got.data()[k], want[k])
            << "drain_into mismatch at block " << j << " index " << k;
      }
    }
    // Random chunk partition, including zero-length chunks, mixing bulk
    // and single-element advances on the same live stream.
    {
      raw_slots<T> got(len);
      auto st = bd.block(j);
      std::size_t done = 0;
      std::uint64_t draw = j * 1315423911ull;
      while (done < len) {
        std::size_t c = gen.below(draw++, 2) == 0
                            ? gen.below(draw++, 4)  // 0..3: exercise 0
                            : gen.below(draw++, len - done + 1);
        if (c > len - done) c = len - done;
        if (c == 1 && gen.coin(draw++)) {
          // Interleave a plain next() to prove bulk calls leave the
          // stream positioned exactly where element-at-a-time would.
          ::new (static_cast<void*>(got.data() + done)) T(st.next());
        } else {
          stream::next_n(st, got.data() + done, c);
        }
        done += c;
        got.mark_constructed(done);
      }
      for (std::size_t k = 0; k < len; ++k) {
        ASSERT_EQ(got.data()[k], want[k])
            << "chunked next_n mismatch at block " << j << " index " << k;
      }
    }
  }
}

// --- randomized pipelines ----------------------------------------------------

struct BulkParam {
  std::uint64_t seed;
};

class BulkStreamTest : public ::testing::TestWithParam<BulkParam> {
 protected:
  void SetUp() override {
    seed_ = GetParam().seed;
    trace_.emplace(__FILE__, __LINE__,
                   ::testing::Message()
                       << "seed=" << seed_ << "  [replay: PBDS_SEED="
                       << seed_ << " ./test_bulk_streams]");
    gen_ = random::rng(seed_);
    n_ = static_cast<std::size_t>(gen_.below(1, 3000));
    if (gen_.below(2, 10) == 0) n_ = gen_.below(3, 3);  // 0/1/2 corner
    block_ = std::size_t{1} << gen_.below(4, 10);       // 1..512
    guard_.emplace(block_);
    input_ = parray<int64_t>::tabulate(n_, [g = gen_](std::size_t i) {
      return static_cast<int64_t>(g.below(1000 + i, 2001)) - 1000;
    });
  }

  // Held as a member (not a local in SetUp) so the trace is active for the
  // whole test body, not just until SetUp returns.
  std::optional<::testing::ScopedTrace> trace_;
  std::optional<scoped_block_size> guard_;
  std::uint64_t seed_ = 0;
  random::rng gen_{0};
  std::size_t n_ = 0;
  std::size_t block_ = 0;
  parray<int64_t> input_;
};

TEST_P(BulkStreamTest, MapOverContiguousView) {
  SCOPED_TRACE("pipeline: map(affine, view(a))");
  int64_t a = static_cast<int64_t>(gen_.below(10, 9)) + 1;
  int64_t b = static_cast<int64_t>(gen_.below(11, 13));
  auto bd = delayed::bid_of(
      delayed::map([a, b](int64_t x) { return a * x + b; },
                   delayed::view(input_)));
  expect_block_bulk_equivalence(bd, gen_.split(1));
}

TEST_P(BulkStreamTest, PlainContiguousView) {
  SCOPED_TRACE("pipeline: view(a)  [pointer_stream/memcpy path]");
  auto bd = delayed::bid_of(delayed::view(input_));
  expect_block_bulk_equivalence(bd, gen_.split(2));
}

TEST_P(BulkStreamTest, ZipOfMapAndIota) {
  SCOPED_TRACE("pipeline: zip(map(q, view(a)), iota)");
  auto z = delayed::zip(
      delayed::map([](int64_t x) { return x * 3 - 7; },
                   delayed::view(input_)),
      delayed::iota(n_));
  auto bd = delayed::bid_of(z);
  expect_block_bulk_equivalence(bd, gen_.split(3));
}

TEST_P(BulkStreamTest, ScanStreamBlocks) {
  SCOPED_TRACE("pipeline: scan(+, map(q, view(a)))  [scan_stream blocks]");
  auto [pre, tot] = delayed::scan(
      [](int64_t x, int64_t y) { return x + y; }, int64_t{0},
      delayed::map([](int64_t x) { return x % 97; }, delayed::view(input_)));
  expect_block_bulk_equivalence(pre, gen_.split(4));
  (void)tot;
}

TEST_P(BulkStreamTest, ScanInclusiveStreamBlocks) {
  SCOPED_TRACE("pipeline: scan_inclusive(+, view(a))");
  auto [pre, tot] = delayed::scan_inclusive(
      [](int64_t x, int64_t y) { return x + y; }, int64_t{0},
      delayed::view(input_));
  expect_block_bulk_equivalence(pre, gen_.split(5));
  (void)tot;
}

TEST_P(BulkStreamTest, FilterRegionBlocks) {
  SCOPED_TRACE("pipeline: filter(p, map(q, view(a)))  [region runs]");
  int64_t m = static_cast<int64_t>(gen_.below(20, 5)) + 2;
  auto f = delayed::filter(
      [m](int64_t x) { return x % m == 0; },
      delayed::map([](int64_t x) { return x + 1; }, delayed::view(input_)));
  expect_block_bulk_equivalence(f, gen_.split(6));
}

TEST_P(BulkStreamTest, FlattenMaterializedBlocks) {
  SCOPED_TRACE("pipeline: flatten(nested)  [flatten_stream, ragged runs]");
  using buf = memory::tracked_vector<int64_t>;
  std::size_t outer = gen_.below(30, 80);
  auto nested = parray<buf>::tabulate(outer, [g = gen_](std::size_t i) {
    buf v;
    std::size_t len = g.below(500 + i, 30);  // includes zero-length inners
    for (std::size_t j2 = 0; j2 < len; ++j2)
      v.push_back(static_cast<int64_t>(g.below(900 + i * 31 + j2, 2001)));
    return v;
  });
  auto fl = delayed::flatten(nested);
  expect_block_bulk_equivalence(fl, gen_.split(7));
}

TEST_P(BulkStreamTest, FusedFilterZipFlattenComposition) {
  SCOPED_TRACE(
      "pipeline: map(h, zip(filter(p, view(a)), iota))  [composed]");
  auto f = delayed::filter([](int64_t x) { return (x & 1) == 0; },
                           delayed::view(input_));
  std::size_t fn = delayed::length(f);
  auto z = delayed::zip(f, delayed::iota(fn));
  auto m = delayed::map(
      [](const std::pair<int64_t, std::size_t>& p) {
        return p.first - static_cast<int64_t>(p.second);
      },
      z);
  auto bd = delayed::bid_of(m);
  expect_block_bulk_equivalence(bd, gen_.split(8));
}

// Non-trivially-destructible elements take the per-element construction
// path inside next_n (stageable_v is false); the protocol must still be
// equivalent and leak-free. std::string with SSO-defeating payloads also
// exercises real allocation in the copies.
TEST_P(BulkStreamTest, NonTriviallyDestructibleElements) {
  SCOPED_TRACE("pipeline: map(to_string, view(a))  [std::string elements]");
  auto bd = delayed::bid_of(delayed::map(
      [](int64_t x) {
        return std::string("value-with-a-long-tail-") + std::to_string(x);
      },
      delayed::view(input_)));
  expect_block_bulk_equivalence(bd, gen_.split(9));
}

// Leak detector: every element constructed by next_n must be destroyed
// exactly once by the caller-side cleanup.
struct counted {
  static std::atomic<long>& live() {
    static std::atomic<long> n{0};
    return n;
  }
  int64_t v = 0;
  counted() { ++live(); }
  explicit counted(int64_t x) : v(x) { ++live(); }
  counted(const counted& o) : v(o.v) { ++live(); }
  counted(counted&& o) noexcept : v(o.v) { ++live(); }
  counted& operator=(const counted&) = default;
  counted& operator=(counted&&) = default;
  ~counted() { --live(); }
  bool operator==(const counted& o) const { return v == o.v; }
};

TEST_P(BulkStreamTest, InstanceCountBalancedForOwningElements) {
  long before = counted::live().load();
  {
    auto bd = delayed::bid_of(delayed::map(
        [](int64_t x) { return counted(x * 2 + 1); },
        delayed::view(input_)));
    expect_block_bulk_equivalence(bd, gen_.split(10));
  }
  EXPECT_EQ(counted::live().load(), before)
      << "bulk protocol leaked or double-destroyed elements";
}

std::vector<BulkParam> bulk_params() {
  // PBDS_SEED collapses the sweep to one seed for failure replay.
  if (const char* env = std::getenv("PBDS_SEED"))
    return {BulkParam{std::strtoull(env, nullptr, 0)}};
  std::vector<BulkParam> ps;
  for (std::uint64_t s = 1; s <= 24; ++s) ps.push_back(BulkParam{s});
  return ps;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BulkStreamTest,
                         ::testing::ValuesIn(bulk_params()),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param.seed);
                         });

}  // namespace
