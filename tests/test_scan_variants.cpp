// Scans and reduces under different monoids: the blocked implementations
// require (f, z) to be a monoid (z a two-sided identity, f associative);
// these tests run several non-plus monoids across all three libraries and
// block sizes, including ones where wrong identity handling would corrupt
// results at block boundaries (max with -inf, bitwise-or, gcd, interval
// merge).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "benchmarks/policies.hpp"
#include "core/block.hpp"
#include "random/rng.hpp"

namespace {

using namespace pbds;  // NOLINT

class ScanVariants : public ::testing::TestWithParam<std::size_t> {
 protected:
  scoped_block_size guard_{GetParam()};
};

template <typename P, typename T, typename F>
std::vector<T> lib_scan(const parray<T>& in, F f, T z) {
  auto [pre, total] = P::scan(f, z, P::view(in));
  (void)total;
  auto arr = P::to_array(std::move(pre));
  return {arr.begin(), arr.end()};
}

template <typename T, typename F>
std::vector<T> model_scan(const parray<T>& in, F f, T z) {
  std::vector<T> out(in.size());
  T acc = z;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc = f(acc, in[i]);
  }
  return out;
}

template <typename T, typename F>
void check_all(const parray<T>& in, F f, T z) {
  auto want = model_scan(in, f, z);
  EXPECT_EQ((lib_scan<array_policy>(in, f, z)), want);
  EXPECT_EQ((lib_scan<rad_policy>(in, f, z)), want);
  EXPECT_EQ((lib_scan<delay_policy>(in, f, z)), want);
}

TEST_P(ScanVariants, MaxMonoid) {
  random::rng gen(1);
  auto in = parray<std::int64_t>::tabulate(500, [&](std::size_t i) {
    return static_cast<std::int64_t>(gen.below(i, 1000)) - 500;
  });
  check_all(
      in, [](std::int64_t a, std::int64_t b) { return a > b ? a : b; },
      std::numeric_limits<std::int64_t>::min());
}

TEST_P(ScanVariants, MinMonoid) {
  random::rng gen(2);
  auto in = parray<std::int64_t>::tabulate(321, [&](std::size_t i) {
    return static_cast<std::int64_t>(gen.below(i, 1000));
  });
  check_all(
      in, [](std::int64_t a, std::int64_t b) { return a < b ? a : b; },
      std::numeric_limits<std::int64_t>::max());
}

TEST_P(ScanVariants, BitwiseOr) {
  random::rng gen(3);
  auto in = parray<std::uint64_t>::tabulate(
      200, [&](std::size_t i) { return gen.u64(i) & 0xffff; });
  check_all(in,
            [](std::uint64_t a, std::uint64_t b) { return a | b; },
            std::uint64_t{0});
}

TEST_P(ScanVariants, Gcd) {
  random::rng gen(4);
  auto in = parray<std::uint64_t>::tabulate(150, [&](std::size_t i) {
    return 6 * (1 + gen.below(i, 100));  // multiples of 6
  });
  // gcd with identity 0: gcd(0, x) = x.
  check_all(in,
            [](std::uint64_t a, std::uint64_t b) { return std::gcd(a, b); },
            std::uint64_t{0});
}

// Interval-merge monoid: (lo, hi) bounding boxes under union, with the
// empty interval as identity — a struct-valued monoid.
struct interval {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  friend bool operator==(const interval&, const interval&) = default;
};

interval merge(const interval& a, const interval& b) {
  return interval{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

TEST_P(ScanVariants, IntervalUnion) {
  random::rng gen(5);
  auto in = parray<interval>::tabulate(100, [&](std::size_t i) {
    double c = gen.uniform(2 * i, -10, 10);
    double w = gen.uniform(2 * i + 1, 0, 2);
    return interval{c - w, c + w};
  });
  check_all(in, merge, interval{});
}

TEST_P(ScanVariants, ReduceAgreesWithScanTotal) {
  random::rng gen(6);
  auto in = parray<std::int64_t>::tabulate(777, [&](std::size_t i) {
    return static_cast<std::int64_t>(gen.below(i, 100));
  });
  auto f = [](std::int64_t a, std::int64_t b) { return a > b ? a : b; };
  std::int64_t z = std::numeric_limits<std::int64_t>::min();
  auto [pre, total] = pbds::delayed::scan(f, z, pbds::delayed::view(in));
  (void)pre;
  EXPECT_EQ(total, pbds::delayed::reduce(f, z, pbds::delayed::view(in)));
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, ScanVariants,
                         ::testing::Values(1, 3, 32, 4096),
                         [](const auto& info) {
                           return "B" + std::to_string(info.param);
                         });

}  // namespace
