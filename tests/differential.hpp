// Differential oracle harness.
//
// The paper's central claim is *semantic transparency*: the delayed
// libraries (rad, delay) must be element-exact drop-in replacements for
// the eager array baseline, under ANY schedule the work-stealing pool can
// produce, while never using more space. This harness turns that claim
// into an executable oracle:
//
//   for each kernel/pipeline case:
//     for each backend in {array, rad, delay}:
//       for each mode in {sequential, deterministic(seed sweep), real}:
//         digest(run) == digest(reference)          (element-exact)
//     delayed peak residency <= array peak residency (space invariant)
//     same seed twice => identical trace + digest    (replayable)
//
// Every deterministic-mode assertion is wrapped in a SCOPED_TRACE carrying
// the seed, so a gtest failure prints the integer needed to replay it:
//
//   ./build/tests/test_differential --seed 12345
//
// (or PBDS_SEED=12345) collapses all seed sweeps to that one seed.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "benchmarks/policies.hpp"
#include "integrity/block_digest.hpp"
#include "memory/budget.hpp"
#include "memory/tracking.hpp"
#include "recovery/checkpoint_ops.hpp"
#include "sched/deterministic.hpp"
#include "sched/exec_policy.hpp"
#include "sched/parallel.hpp"
#include "stream/streams.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pbds::testing {

// --- hostile-env isolation (PR 10) ------------------------------------------

// CI exports PBDS_* knobs (an ambient budget, watchdog cadence, service
// pressure) around entire ctest runs; suites that inject their own budgets
// and faults must not have their semantics silently rewritten by that
// ambient environment. scoped_env snapshots every PBDS_* variable, unsets
// the behavioral ones, and re-reads each first-touch env cache so the
// cleared state is actually observed — then restores both on destruction.
//
// The structural replay knobs — PBDS_SEED, PBDS_SEED_TRACE,
// PBDS_NUM_THREADS — are deliberately kept: they select WHICH schedule a
// sweep replays, not what the library does, and clearing them would break
// the documented failure-replay workflow (PBDS_SEED=N reruns one seed).
//
// Single-threaded contract: construct/destroy only while no parallel work
// is in flight (same as scoped_bulk_disable); setenv/unsetenv are not
// thread-safe against concurrent getenv.
class scoped_env {
 public:
  scoped_env() {
    for (char** e = ::environ; e != nullptr && *e != nullptr; ++e) {
      const char* s = *e;
      if (std::strncmp(s, "PBDS_", 5) != 0) continue;
      const char* eq = std::strchr(s, '=');
      if (eq == nullptr) continue;
      std::string name(s, static_cast<std::size_t>(eq - s));
      if (name == "PBDS_SEED" || name == "PBDS_SEED_TRACE" ||
          name == "PBDS_NUM_THREADS")
        continue;
      saved_.emplace_back(std::move(name), std::string(eq + 1));
    }
    for (const auto& [name, value] : saved_) ::unsetenv(name.c_str());
    reload_env_caches();
  }
  ~scoped_env() {
    for (const auto& [name, value] : saved_)
      ::setenv(name.c_str(), value.c_str(), 1);
    reload_env_caches();
  }
  scoped_env(const scoped_env&) = delete;
  scoped_env& operator=(const scoped_env&) = delete;

  // Every first-touch PBDS_* cache in the library, re-read in one place.
  // A new knob cached at static-init time must be added here or scoped_env
  // silently stops isolating it (test_telemetry asserts the budget one).
  static void reload_env_caches() {
    memory::reload_budget_limit_from_env();
    integrity::reload_verify_from_env();
    stream::reload_bulk_from_env();
    telemetry::reload_metrics_from_env();
    telemetry::reload_trace_from_env();
  }

  [[nodiscard]] std::size_t cleared() const { return saved_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> saved_;
};

// --- digests ----------------------------------------------------------------

// A flat, exactly-comparable summary of a kernel's output. double carries
// every value the kernels produce (indices and counters stay below 2^53),
// and element-exact agreement across backends is the paper's determinism
// claim: identical blocking => identical combination trees => identical
// bits, even for floating-point scans.
using digest = std::vector<double>;

inline void put(digest& d, double v) { d.push_back(v); }

template <typename Seq>
void put_all(digest& d, const Seq& xs) {
  for (const auto& x : xs) d.push_back(static_cast<double>(x));
}

// First-mismatch reporting; EXPECT (not ASSERT) so a sweep keeps going and
// reports every offending (backend, mode, seed) combination.
inline void expect_digest_eq(const digest& got, const digest& want,
                             const std::string& label) {
  EXPECT_EQ(got.size(), want.size()) << label;
  std::size_t n = got.size() < want.size() ? got.size() : want.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (got[i] != want[i]) {
      EXPECT_EQ(got[i], want[i]) << label << " first mismatch at index " << i;
      return;
    }
  }
}

// --- seed selection ---------------------------------------------------------

// Set from --seed / PBDS_SEED (see test_differential's main); when set,
// every sweep collapses to exactly this seed for failure replay.
inline std::optional<std::uint64_t>& replay_seed() {
  static std::optional<std::uint64_t> s = [] {
    std::optional<std::uint64_t> v;
    if (const char* env = std::getenv("PBDS_SEED"))
      v = std::strtoull(env, nullptr, 0);
    return v;
  }();
  return s;
}

inline std::vector<std::uint64_t> sweep_seeds(std::size_t count) {
  if (replay_seed().has_value()) return {*replay_seed()};
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    seeds.push_back(0x5eed + i);  // arbitrary but stable across runs
  return seeds;
}

// SCOPED_TRACE wrapper naming the failing seed and how to replay it. Must
// be a macro so the trace points at the caller's line.
#define PBDS_SEED_TRACE(seed)                                         \
  SCOPED_TRACE(::testing::Message()                                   \
               << "det seed=" << (seed) << "  [replay: test binary "  \
               << "--seed " << (seed) << " or PBDS_SEED=" << (seed) << "]")

// --- cases ------------------------------------------------------------------

enum backend { kArray = 0, kRad = 1, kDelay = 2 };
inline constexpr const char* kBackendNames[3] = {"array", "rad", "delay"};

// One differential case: the same computation instantiated under each of
// the three library policies, returning a digest. Inputs are built inside
// the closure on every run, so each run is self-contained and the space
// meter sees the whole computation.
struct diff_case {
  std::string name;
  std::function<digest()> run[3];
};

// K is a C++20 template lambda: []<typename P>() -> digest { ... }.
template <typename K>
diff_case make_diff_case(std::string name, K kernel) {
  diff_case c;
  c.name = std::move(name);
  c.run[kArray] = [kernel] {
    return kernel.template operator()<pbds::array_policy>();
  };
  c.run[kRad] = [kernel] {
    return kernel.template operator()<pbds::rad_policy>();
  };
  c.run[kDelay] = [kernel] {
    return kernel.template operator()<pbds::delay_policy>();
  };
  return c;
}

// --- the oracles ------------------------------------------------------------

// Element-exact agreement of every backend under every execution mode with
// the reference (array backend, sequential execution).
inline void expect_backends_agree(const diff_case& c,
                                  const std::vector<std::uint64_t>& seeds,
                                  unsigned det_workers = 4) {
  digest ref;
  {
    sched::scoped_sequential g;
    ref = c.run[kArray]();
  }
  for (int b = 0; b < 3; ++b) {
    std::string base = c.name + " backend=" + kBackendNames[b];
    {
      sched::scoped_sequential g;
      expect_digest_eq(c.run[b](), ref, base + " mode=sequential");
    }
    for (std::uint64_t seed : seeds) {
      PBDS_SEED_TRACE(seed);
      sched::scoped_deterministic g(seed, det_workers);
      expect_digest_eq(c.run[b](), ref,
                       base + " mode=deterministic seed=" +
                           std::to_string(seed));
    }
    expect_digest_eq(c.run[b](), ref, base + " mode=real-scheduler");
  }
}

// The paper's space claim as an oracle: running the fused (delay) version
// must never have a higher peak residency than the eager array version.
// Measured sequentially so the peak is schedule-independent.
//
// The claim is asymptotic — block-delayed sequences carry O(n/B + 1) bytes
// of block metadata (piece offsets, scan partials) that the eager version
// does not, so at the small n these tests run, a fused pipeline can sit a
// few hundred bytes above the array peak while still eliminating every
// O(n) intermediate. `slack_bytes` (default: one 4 KiB page) absorbs that
// metadata; a regression that materializes even one extra n-sized array
// overshoots it by an order of magnitude at these sizes.
inline void expect_space_invariant(const diff_case& c,
                                   std::int64_t slack_bytes = 4096) {
  sched::scoped_sequential g;
  memory::space_meter ma;
  digest da = c.run[kArray]();
  std::int64_t array_peak = ma.peak_delta_bytes();
  memory::space_meter md;
  digest dd = c.run[kDelay]();
  std::int64_t delay_peak = md.peak_delta_bytes();
  EXPECT_LE(delay_peak, array_peak + slack_bytes)
      << c.name << ": delayed peak " << delay_peak
      << " bytes exceeds array peak " << array_peak << " bytes (+ "
      << slack_bytes << " metadata slack)";
  expect_digest_eq(dd, da, c.name + " (space-run digests)");
}

// Fast-vs-generic oracle for the bulk stream paths (PR 6): every kernel
// runs both with the specialized bulk loops enabled (the default) and with
// scoped_bulk_disable forcing the element-at-a-time fallback, and the two
// executions must be indistinguishable:
//
//   * element-exact digests, in all three backends, under sequential,
//     deterministic (seed sweep), and real-pool execution;
//   * byte-exact allocation accounting sequentially — the bulk loops may
//     stage elements on the stack but must trigger the exact same tracked
//     allocations (e.g. filter's push_back growth sequence);
//   * arming the allocation fault injector must itself force the fallback
//     (bulk_enabled() == false), so the exception-tolerance paths only
//     ever see the per-element evaluation order they were written for.
inline void expect_bulk_matches_generic(
    const diff_case& c, const std::vector<std::uint64_t>& seeds,
    unsigned det_workers = 4) {
  for (int b = 0; b < 3; ++b) {
    std::string base =
        std::string(c.name) + " backend=" + kBackendNames[b] + " ";
    // Sequential: digests AND bytes-accounting must match exactly.
    digest fast;
    std::int64_t fast_alloc, fast_peak;
    {
      sched::scoped_sequential g;
      memory::space_meter m;
      fast = c.run[b]();
      fast_alloc = m.allocated_bytes();
      fast_peak = m.peak_delta_bytes();
    }
    digest slow;
    std::int64_t slow_alloc, slow_peak;
    {
      sched::scoped_sequential g;
      stream::scoped_bulk_disable off;
      memory::space_meter m;
      slow = c.run[b]();
      slow_alloc = m.allocated_bytes();
      slow_peak = m.peak_delta_bytes();
    }
    expect_digest_eq(fast, slow, base + "bulk vs generic (sequential)");
    EXPECT_EQ(fast_alloc, slow_alloc)
        << base << "bulk path changed the allocated-bytes accounting";
    EXPECT_EQ(fast_peak, slow_peak)
        << base << "bulk path changed the peak-bytes accounting";
    // Deterministic seed sweep + real pool: digest equality.
    for (std::uint64_t seed : seeds) {
      PBDS_SEED_TRACE(seed);
      digest df, ds;
      {
        sched::scoped_deterministic g(seed, det_workers);
        df = c.run[b]();
      }
      {
        sched::scoped_deterministic g(seed, det_workers);
        stream::scoped_bulk_disable off;
        ds = c.run[b]();
      }
      expect_digest_eq(df, ds,
                       base + "bulk vs generic (det seed=" +
                           std::to_string(seed) + ")");
    }
    {
      digest df = c.run[b]();
      stream::scoped_bulk_disable off;
      digest ds = c.run[b]();
      expect_digest_eq(df, ds, base + "bulk vs generic (real pool)");
    }
  }
  // Armed injector => generic path, even with the bulk flag left on. The
  // fault never fires (huge countdown), so the run must reproduce the
  // generic digest bit-for-bit.
  {
    sched::scoped_sequential g;
    auto inj =
        memory::scoped_alloc_faults::fail_nth(std::int64_t{1} << 40);
    EXPECT_FALSE(stream::bulk_enabled())
        << "armed fault injector must disable bulk paths";
    digest armed = c.run[kDelay]();
    digest generic;
    {
      stream::scoped_bulk_disable off;
      generic = c.run[kDelay]();
    }
    expect_digest_eq(armed, generic,
                     c.name + " armed-injector vs forced-generic");
  }
}

// Replay oracle: the same seed must reproduce the same interleaving trace
// (hash + decision count) and the same digest, for every backend.
inline void expect_seed_replay(const diff_case& c,
                               const std::vector<std::uint64_t>& seeds,
                               unsigned det_workers = 4) {
  for (int b = 0; b < 3; ++b) {
    for (std::uint64_t seed : seeds) {
      PBDS_SEED_TRACE(seed);
      std::uint64_t hash1, hash2;
      std::size_t forks1, forks2;
      digest d1, d2;
      {
        sched::scoped_deterministic g(seed, det_workers);
        d1 = c.run[b]();
        hash1 = g.scheduler().trace_hash();
        forks1 = g.scheduler().num_forks();
      }
      {
        sched::scoped_deterministic g(seed, det_workers);
        d2 = c.run[b]();
        hash2 = g.scheduler().trace_hash();
        forks2 = g.scheduler().num_forks();
      }
      std::string label = c.name + " backend=" + kBackendNames[b] +
                          " seed=" + std::to_string(seed);
      EXPECT_EQ(hash1, hash2) << label << " trace hash diverged on replay";
      EXPECT_EQ(forks1, forks2) << label << " fork count diverged on replay";
      expect_digest_eq(d2, d1, label + " (replay digests)");
    }
  }
}

// --- silent-corruption injector (PR 8) --------------------------------------

// Arms the integrity bit-flip injector for a scope: every resumable_result
// resume flips `flips_per_resume` random bits inside completed blocks of
// the salvaged storage, simulating silent corruption between the failed
// attempt and the retry. `delivered()` reports how many flips actually
// landed (zero when no resume touched trivially-copyable storage), so a
// test can assert its corruption sweep was non-vacuous.
class scoped_bit_flip {
 public:
  explicit scoped_bit_flip(std::size_t flips_per_resume,
                           std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // arm_bit_flips zeroes the delivered counter, so delivered() counts
    // from this arming.
    integrity::arm_bit_flips(flips_per_resume, seed);
  }
  ~scoped_bit_flip() { integrity::disarm_bit_flips(); }
  scoped_bit_flip(const scoped_bit_flip&) = delete;
  scoped_bit_flip& operator=(const scoped_bit_flip&) = delete;

  // Flips delivered since this injector was armed.
  std::uint64_t delivered() const { return integrity::bit_flips_delivered(); }
};

// --- resume oracle (PR 7) ---------------------------------------------------

// One recovery case: a pipeline whose terminal passes run through the
// checkpointed recovery:: ops against the supplied job_checkpoint, digesting
// the result. The same closure serves as the failing attempt (under an armed
// boundary fault) and the resuming attempt (same checkpoint, no fault), so
// any divergence between "resumed" and "ran clean" is the library's fault,
// not the test's.
struct resume_case {
  std::string name;
  std::function<digest(recovery::job_checkpoint&)> run;
};

inline constexpr recovery::boundary_fault_kind kResumeFaultKinds[3] = {
    recovery::boundary_fault_kind::fault, recovery::boundary_fault_kind::stall,
    recovery::boundary_fault_kind::budget};
inline constexpr const char* kResumeFaultNames[3] = {"fault", "stall",
                                                     "budget"};

namespace detail {

// One crash-at-boundary-`b` probe: fault the attempt after `b` unit starts,
// then resume the same checkpoint cleanly and hold the result to three
// oracles:
//
//   1. digest(resumed) == digest(uninterrupted reference) — bit-identical;
//   2. executions_after - executions_before ==
//      blocks_total_after - blocks_complete_before — after the failed
//      attempt, every block is (re)executed at most once, and completed
//      blocks are never re-executed ("no block executed more than once
//      after the successful attempt": units that appear during the resume,
//      e.g. a later op's slot in a multi-op job, are counted by
//      blocks_total_after);
//   3. with `check_bytes`, destroying the checkpoint returns bytes_live to
//      its pre-case baseline — partial progress does not leak (only
//      asserted sequentially; scheduler pools allocate lazily).
//
// Returns true when boundary `b` is past the end of the computation (the
// armed fault never fired), which terminates the caller's sweep.
inline bool probe_resume_at_boundary(const resume_case& c,
                                     recovery::boundary_fault_kind kind,
                                     const char* kind_name, std::int64_t b,
                                     const digest& ref,
                                     const std::string& mode_label,
                                     bool check_bytes) {
  std::string label = c.name + " kind=" + kind_name +
                      " boundary=" + std::to_string(b) + " " + mode_label;
  bool past_end = false;
  std::int64_t base_bytes = memory::bytes_live();
  {
    recovery::job_checkpoint ck;
    bool faulted = false;
    {
      recovery::scoped_boundary_faults inj(kind, b);
      try {
        digest clean = c.run(ck);
        if (inj.injected() == 0) {
          // Boundary lies past the last unit: a clean, unfaulted run.
          expect_digest_eq(clean, ref, label + " (unfaulted run)");
          past_end = true;
        } else {
          ADD_FAILURE() << label
                        << ": attempt completed despite an injected fault";
        }
      } catch (...) {
        EXPECT_EQ(inj.injected(), 1u)
            << label << " one-shot injector fired more than once";
        faulted = true;
      }
    }
    if (faulted) {
      recovery::progress before = ck.aggregate();
      digest resumed = c.run(ck);  // no faults armed: must complete
      expect_digest_eq(resumed, ref, label + " (resumed run)");
      recovery::progress after = ck.aggregate();
      EXPECT_EQ(after.executions - before.executions,
                after.blocks_total - before.blocks_complete)
          << label
          << ": resume re-executed blocks the failed attempt completed "
          << "(executions " << before.executions << " -> " << after.executions
          << ", complete " << before.blocks_complete << "/"
          << before.blocks_total << " -> " << after.blocks_complete << "/"
          << after.blocks_total << ")";
      EXPECT_EQ(after.blocks_complete, after.blocks_total)
          << label << ": resumed run left incomplete blocks";
    }
  }
  if (check_bytes) {
    EXPECT_EQ(memory::bytes_live(), base_bytes)
        << label << ": checkpoint destruction leaked partial progress";
  }
  return past_end;
}

}  // namespace detail

// The recovery differential oracle: for every fault kind (plain fault,
// stall_detected, budget_exceeded) and every execution mode (sequential,
// deterministic seed sweep, real pool), crash the case at EVERY block
// boundary in turn and prove resume == fresh run. The sweep self-sizes: it
// advances the crash boundary until the armed fault no longer fires.
inline void expect_resume_equivalence(const resume_case& c,
                                      const std::vector<std::uint64_t>& seeds,
                                      unsigned det_workers = 4) {
  constexpr std::int64_t kSweepCap = 4096;  // backstop against a runaway sweep
  digest ref;
  {
    sched::scoped_sequential g;
    recovery::job_checkpoint ck;
    ref = c.run(ck);
  }
  for (int k = 0; k < 3; ++k) {
    // Sequential: full sweep + leak check.
    std::int64_t boundaries = 0;
    for (std::int64_t b = 0; b < kSweepCap; ++b) {
      sched::scoped_sequential g;
      if (detail::probe_resume_at_boundary(c, kResumeFaultKinds[k],
                                           kResumeFaultNames[k], b, ref,
                                           "mode=sequential", true)) {
        boundaries = b;
        break;
      }
    }
    // Non-vacuity: a case with zero faultable boundaries means the
    // checkpointed ops never consulted the injector — the sweep tested
    // nothing.
    EXPECT_GT(boundaries, 0)
        << c.name << " kind=" << kResumeFaultNames[k]
        << ": no boundary fault ever fired; sweep is vacuous";
    // Deterministic: full sweep per seed, replayable via PBDS_SEED_TRACE.
    for (std::uint64_t seed : seeds) {
      PBDS_SEED_TRACE(seed);
      for (std::int64_t b = 0; b < kSweepCap; ++b) {
        sched::scoped_deterministic g(seed, det_workers);
        if (detail::probe_resume_at_boundary(
                c, kResumeFaultKinds[k], kResumeFaultNames[k], b, ref,
                "mode=deterministic seed=" + std::to_string(seed), false))
          break;
      }
    }
    // Real pool: the fault lands on whichever worker crosses the boundary.
    for (std::int64_t b = 0; b < kSweepCap; ++b) {
      if (detail::probe_resume_at_boundary(c, kResumeFaultKinds[k],
                                           kResumeFaultNames[k], b, ref,
                                           "mode=real-scheduler", false))
        break;
    }
  }
}

}  // namespace pbds::testing
