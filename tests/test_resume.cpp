// Block-granular checkpoint/resume (PR 7).
//
// The recovery subsystem's contract, as executable oracles:
//
//   * crash-at-every-block-boundary sweep: for each checkpointed terminal
//     op (to_array / force / reduce / scan / scan_inclusive / flatten
//     pipelines, plus a multi-op job), inject a fault | stall | budget
//     refusal at EVERY unit boundary in turn, resume the same checkpoint,
//     and require the resumed output to be bit-identical to an
//     uninterrupted run (expect_resume_equivalence, differential.hpp);
//   * no block is executed more than once after the successful attempt
//     (the executions-delta formula inside the oracle);
//   * bytes_live returns to baseline once the checkpoint dies, even when
//     progress was partial and elements are non-trivially destructible;
//   * budget_exceeded / stall_detected escaping a checkpointed op carry
//     the ledger's progress snapshot (attach_progress);
//   * under an ACTIVE budget, the drain/backoff retry ladder resumes from
//     the ledger in place — one visible call, each block executed once;
//   * scoped_resume_disable degrades every resume to a fresh run (the
//     A/B kill switch for the whole subsystem).
//
// Replay: all deterministic sweeps honor PBDS_SEED=<n> to collapse to one
// seed (see docs/TESTING.md §resume).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "core/block.hpp"
#include "differential.hpp"
#include "memory/budget.hpp"
#include "memory/tracking.hpp"
#include "recovery/checkpoint_ops.hpp"
#include "sched/exec_policy.hpp"

namespace {

using pbds::parray;
using pbds::testing::digest;
using pbds::testing::put;
using pbds::testing::put_all;
using pbds::testing::resume_case;
using pbds::testing::sweep_seeds;
namespace delayed = pbds::delayed;
namespace recovery = pbds::recovery;
namespace memory = pbds::memory;

// Small blocks so every case has a handful of boundaries to crash at
// without making the sweep (3 kinds x boundaries x modes x seeds) slow.
constexpr std::size_t kBlk = 256;
constexpr std::size_t kN = 1600;  // 7 blocks of 256
constexpr std::size_t kBlocks = (kN + kBlk - 1) / kBlk;

inline std::uint64_t plus(std::uint64_t a, std::uint64_t b) { return a + b; }

// --- the crash-at-every-boundary sweep --------------------------------------

// The sweeps inject their own budget refusals / stalls / faults and prove
// exact resume equivalence; an ambient PBDS_* environment (the CI
// hostile-env stage exports PBDS_BUDGET_BYTES around the full ctest run)
// must not rewrite what those injections mean. scoped_env clears the
// behavioral knobs for the duration of each test and restores them after.
class ResumeSweep : public ::testing::Test {
 protected:
  pbds::testing::scoped_env env_;
};

TEST_F(ResumeSweep, ToArrayOverMappedIota) {
  resume_case c{"resume.to_array(map.iota)", [](recovery::job_checkpoint& ck) {
                  pbds::scoped_block_size bs(kBlk);
                  auto xs = delayed::map(
                      [](std::size_t i) {
                        return static_cast<std::uint64_t>(i) * (i ^ 0x9e37u);
                      },
                      delayed::iota(kN));
                  const auto& a =
                      recovery::to_array(xs, ck.slot<std::uint64_t>(0));
                  digest d;
                  put_all(d, a);
                  return d;
                }};
  pbds::testing::expect_resume_equivalence(c, sweep_seeds(16));
}

TEST_F(ResumeSweep, ToArrayOverRadTabulate) {
  resume_case c{"resume.to_array(tabulate)",
                [](recovery::job_checkpoint& ck) {
                  pbds::scoped_block_size bs(kBlk);
                  auto xs = delayed::tabulate(kN, [](std::size_t i) {
                    return static_cast<std::uint64_t>(i * 2654435761u);
                  });
                  const auto& a =
                      recovery::to_array(xs, ck.slot<std::uint64_t>(0));
                  digest d;
                  put_all(d, a);
                  return d;
                }};
  pbds::testing::expect_resume_equivalence(c, sweep_seeds(16));
}

TEST_F(ResumeSweep, Reduce) {
  resume_case c{"resume.reduce", [](recovery::job_checkpoint& ck) {
                  pbds::scoped_block_size bs(kBlk);
                  auto xs = delayed::map(
                      [](std::size_t i) {
                        return static_cast<std::uint64_t>(i) + 17u;
                      },
                      delayed::iota(kN));
                  digest d;
                  put(d, static_cast<double>(recovery::reduce(
                             plus, std::uint64_t{0}, xs,
                             ck.slot<std::uint64_t>(0))));
                  return d;
                }};
  pbds::testing::expect_resume_equivalence(c, sweep_seeds(16));
}

TEST_F(ResumeSweep, Scan) {
  resume_case c{"resume.scan", [](recovery::job_checkpoint& ck) {
                  pbds::scoped_block_size bs(kBlk);
                  auto xs = delayed::tabulate(kN, [](std::size_t i) {
                    return static_cast<std::uint64_t>(i % 97);
                  });
                  auto pr = recovery::scan(plus, std::uint64_t{0}, xs,
                                           ck.slot<std::uint64_t>(0));
                  auto arr = delayed::to_array(pr.first);
                  digest d;
                  put_all(d, arr);
                  put(d, static_cast<double>(pr.second));
                  return d;
                }};
  pbds::testing::expect_resume_equivalence(c, sweep_seeds(8));
}

TEST_F(ResumeSweep, ScanInclusive) {
  resume_case c{"resume.scan_inclusive", [](recovery::job_checkpoint& ck) {
                  pbds::scoped_block_size bs(kBlk);
                  auto xs = delayed::tabulate(kN, [](std::size_t i) {
                    return static_cast<std::uint64_t>(i * 31 + 7);
                  });
                  auto pr = recovery::scan_inclusive(plus, std::uint64_t{0},
                                                     xs,
                                                     ck.slot<std::uint64_t>(0));
                  auto arr = delayed::to_array(pr.first);
                  digest d;
                  put_all(d, arr);
                  put(d, static_cast<double>(pr.second));
                  return d;
                }};
  pbds::testing::expect_resume_equivalence(c, sweep_seeds(8));
}

TEST_F(ResumeSweep, FlattenToArray) {
  resume_case c{"resume.to_array(flatten)", [](recovery::job_checkpoint& ck) {
                  pbds::scoped_block_size bs(kBlk);
                  std::size_t outers = kN / 64;
                  auto heads = parray<std::uint64_t>::tabulate(
                      outers,
                      [](std::size_t i) {
                        return static_cast<std::uint64_t>(i);
                      });
                  auto inners = delayed::map(
                      [](std::uint64_t v) {
                        return parray<std::uint64_t>::tabulate(
                            64, [v](std::size_t j) { return v * 64 + j; });
                      },
                      delayed::view(heads));
                  const auto& flat = recovery::to_array(
                      delayed::flatten(inners), ck.slot<std::uint64_t>(0));
                  digest d;
                  put_all(d, flat);
                  return d;
                }};
  pbds::testing::expect_resume_equivalence(c, sweep_seeds(8));
}

TEST_F(ResumeSweep, ForceSharesCompletedStorage) {
  resume_case c{"resume.force", [](recovery::job_checkpoint& ck) {
                  pbds::scoped_block_size bs(kBlk);
                  auto xs = delayed::map(
                      [](std::size_t i) {
                        return static_cast<std::uint64_t>(i ^ 0x5bd1u);
                      },
                      delayed::iota(kN));
                  auto forced =
                      recovery::force(xs, ck.slot<std::uint64_t>(0));
                  digest d;
                  put(d, static_cast<double>(delayed::reduce(
                             plus, std::uint64_t{0}, forced)));
                  return d;
                }};
  pbds::testing::expect_resume_equivalence(c, sweep_seeds(8));
}

// A multi-op job (the soak driver's class-1 shape): a fault in the second
// op's pass must not re-execute the first op's completed blocks — the
// executions-delta oracle inside the sweep checks exactly that, because
// blocks_complete_before counts the finished scan units.
TEST_F(ResumeSweep, MultiOpFilterScanReduce) {
  resume_case c{"resume.filter+scan+reduce",
                [](recovery::job_checkpoint& ck) {
                  pbds::scoped_block_size bs(kBlk);
                  auto input = parray<std::uint64_t>::tabulate(
                      kN,
                      [](std::size_t i) {
                        return static_cast<std::uint64_t>(i);
                      });
                  auto thirds = delayed::filter(
                      [](std::uint64_t v) { return v % 3 == 0; }, input);
                  auto prefix = recovery::scan(plus, std::uint64_t{0}, thirds,
                                               ck.slot<std::uint64_t>(0))
                                    .first;
                  digest d;
                  put(d, static_cast<double>(recovery::reduce(
                             plus, std::uint64_t{0}, prefix,
                             ck.slot<std::uint64_t>(1))));
                  return d;
                }};
  pbds::testing::expect_resume_equivalence(c, sweep_seeds(16));
}

// --- exception progress attachment ------------------------------------------

TEST(ResumeProgress, BudgetRefusalCarriesLedgerSnapshot) {
  pbds::sched::scoped_sequential g;
  pbds::scoped_block_size bs(kBlk);
  recovery::job_checkpoint ck;
  auto xs = delayed::map(
      [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      delayed::iota(kN));
  bool threw = false;
  {
    recovery::scoped_boundary_faults inj(recovery::boundary_fault_kind::budget,
                                         3);
    try {
      (void)recovery::to_array(xs, ck.slot<std::uint64_t>(0));
    } catch (const pbds::budget_exceeded& e) {
      threw = true;
      ASSERT_TRUE(e.has_progress());
      // Sequential execution completes blocks in order: exactly the 3
      // allowed unit starts finished before the refusal.
      EXPECT_EQ(e.checkpoint_progress().blocks_total, kBlocks);
      EXPECT_EQ(e.checkpoint_progress().blocks_complete, 3u);
      EXPECT_EQ(e.checkpoint_progress().bytes_complete,
                3u * kBlk * sizeof(std::uint64_t));
      EXPECT_EQ(e.checkpoint_progress().executions, 3u);
    }
  }
  ASSERT_TRUE(threw);
  // And the checkpoint agrees with what the exception reported.
  EXPECT_EQ(ck.aggregate().blocks_complete, 3u);
}

TEST(ResumeProgress, StallCarriesLedgerSnapshot) {
  pbds::sched::scoped_sequential g;
  pbds::scoped_block_size bs(kBlk);
  recovery::job_checkpoint ck;
  auto xs = delayed::tabulate(
      kN, [](std::size_t i) { return static_cast<std::uint64_t>(i * 3); });
  bool threw = false;
  {
    recovery::scoped_boundary_faults inj(recovery::boundary_fault_kind::stall,
                                         2);
    try {
      (void)recovery::reduce(plus, std::uint64_t{0}, xs,
                             ck.slot<std::uint64_t>(0));
    } catch (const pbds::stall_detected& e) {
      threw = true;
      ASSERT_TRUE(e.has_progress());
      EXPECT_EQ(e.checkpoint_progress().blocks_total, kBlocks);
      EXPECT_EQ(e.checkpoint_progress().blocks_complete, 2u);
    }
  }
  ASSERT_TRUE(threw);
}

// --- budget retry ladder ----------------------------------------------------

// An injected budget refusal PROPAGATES even with a budget active — the
// retry ladder only absorbs real (transient-pressure) refusals, never
// injector-fabricated ones, so the sweep's fault contract is identical
// whether or not PBDS_BUDGET_BYTES (or a budget_scope) is ambient. The
// resumed call then salvages the refused attempt's completed blocks: every
// block executed exactly once across the two visible calls.
TEST(ResumeBudget, InjectedRefusalPropagatesThenResumeSalvages) {
  pbds::sched::scoped_sequential g;
  pbds::scoped_block_size bs(kBlk);
  memory::budget_scope budget(std::int64_t{1} << 30);  // active, generous
  ASSERT_TRUE(memory::budget_active());
  recovery::job_checkpoint ck;
  auto& slot = ck.slot<std::uint64_t>(0);
  auto xs = delayed::map(
      [](std::size_t i) { return static_cast<std::uint64_t>(i + 5); },
      delayed::iota(kN));
  {
    recovery::scoped_boundary_faults inj(recovery::boundary_fault_kind::budget,
                                         4);
    bool threw = false;
    try {
      (void)recovery::to_array(xs, slot);
    } catch (const pbds::budget_exceeded& e) {
      threw = true;
      EXPECT_TRUE(e.injected());
      ASSERT_TRUE(e.has_progress());
      EXPECT_EQ(e.checkpoint_progress().blocks_complete, 4u);
    }
    ASSERT_TRUE(threw) << "injected refusal must propagate, not be retried";
    EXPECT_EQ(inj.injected(), 1u);
  }
  const parray<std::uint64_t>& a = recovery::to_array(xs, slot);
  ASSERT_EQ(a.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i], static_cast<std::uint64_t>(i + 5)) << "at " << i;
  }
  // Across the crash and the resume, each block ran exactly once, and the
  // resumed call salvaged the 4 blocks the refused attempt completed.
  EXPECT_EQ(slot.ledger().executions(), kBlocks);
  EXPECT_EQ(slot.ledger().redone(), 0u);
  EXPECT_GE(slot.ledger().salvaged(), 4u);
}

// --- allocation faults ------------------------------------------------------

// The PR-2 alloc-fault injector composes with resume: an attempt killed by
// a failing tracked allocation keeps its completed blocks, and the resumed
// attempt is bit-identical to an undisturbed run.
TEST(ResumeAllocFault, FlattenResumesAfterAllocFailure) {
  pbds::sched::scoped_sequential g;
  pbds::scoped_block_size bs(kBlk);
  auto run = [](recovery::job_checkpoint& ck) {
    std::size_t outers = kN / 64;
    auto heads = parray<std::uint64_t>::tabulate(
        outers, [](std::size_t i) { return static_cast<std::uint64_t>(i); });
    auto inners = delayed::map(
        [](std::uint64_t v) {
          return parray<std::uint64_t>::tabulate(
              64, [v](std::size_t j) { return v * 131 + j; });
        },
        delayed::view(heads));
    const auto& flat = recovery::to_array(delayed::flatten(inners),
                                          ck.slot<std::uint64_t>(0));
    digest d;
    put_all(d, flat);
    return d;
  };
  digest ref;
  {
    recovery::job_checkpoint ck;
    ref = run(ck);
  }
  for (std::int64_t nth : {1, 2, 5, 9, 14}) {
    recovery::job_checkpoint ck;
    bool faulted = false;
    try {
      auto inj = memory::scoped_alloc_faults::fail_nth(nth);
      digest clean = run(ck);
      // Fault landed beyond the case's allocations: a clean run.
      pbds::testing::expect_digest_eq(clean, ref, "alloc-fault clean run");
    } catch (...) {
      faulted = true;
    }
    if (faulted) {
      recovery::progress before = ck.aggregate();
      digest resumed = run(ck);
      pbds::testing::expect_digest_eq(
          resumed, ref, "resume after alloc fault nth=" + std::to_string(nth));
      recovery::progress after = ck.aggregate();
      EXPECT_EQ(after.executions - before.executions,
                after.blocks_total - before.blocks_complete)
          << "nth=" << nth << ": completed blocks re-executed after resume";
    }
  }
}

// --- non-trivial element lifetimes ------------------------------------------

struct counted {
  static std::atomic<long>& ctors() {
    static std::atomic<long> v{0};
    return v;
  }
  static std::atomic<long>& dtors() {
    static std::atomic<long> v{0};
    return v;
  }
  std::uint64_t v = 0;
  counted() noexcept { ctors().fetch_add(1, std::memory_order_relaxed); }
  explicit counted(std::uint64_t x) noexcept : v(x) {
    ctors().fetch_add(1, std::memory_order_relaxed);
  }
  counted(const counted& o) noexcept : v(o.v) {
    ctors().fetch_add(1, std::memory_order_relaxed);
  }
  counted(counted&& o) noexcept : v(o.v) {
    ctors().fetch_add(1, std::memory_order_relaxed);
  }
  counted& operator=(const counted&) noexcept = default;
  counted& operator=(counted&&) noexcept = default;
  ~counted() { dtors().fetch_add(1, std::memory_order_relaxed); }
};

// Abandoning a partially-complete checkpoint (the park-expiry / job-failure
// path) must destroy exactly the elements that were constructed: untouched
// blocks are default-filled by sanitize() before the storage dies, started
// blocks already hold constructed values or placeholders.
TEST(ResumeLifetime, AbandonedPartialProgressBalancesCtorsAndDtors) {
  pbds::sched::scoped_sequential g;
  pbds::scoped_block_size bs(kBlk);
  std::int64_t base_bytes = memory::bytes_live();
  long c0 = counted::ctors().load(), d0 = counted::dtors().load();
  {
    recovery::job_checkpoint ck;
    auto xs = delayed::map(
        [](std::size_t i) { return counted(static_cast<std::uint64_t>(i)); },
        delayed::iota(kN));
    recovery::scoped_boundary_faults inj(recovery::boundary_fault_kind::fault,
                                         3);
    EXPECT_THROW((void)recovery::to_array(xs, ck.slot<counted>(0)),
                 recovery::boundary_fault);
    // Checkpoint dies here with 3/7 blocks complete — no resume.
  }
  EXPECT_EQ(counted::ctors().load() - c0, counted::dtors().load() - d0)
      << "partial progress leaked or double-destroyed elements";
  EXPECT_EQ(memory::bytes_live(), base_bytes);
}

TEST(ResumeLifetime, ResumedNonTrivialRunBalancesAndMatches) {
  pbds::sched::scoped_sequential g;
  pbds::scoped_block_size bs(kBlk);
  long c0 = counted::ctors().load(), d0 = counted::dtors().load();
  {
    recovery::job_checkpoint ck;
    auto xs = delayed::map(
        [](std::size_t i) {
          return counted(static_cast<std::uint64_t>(i * 13));
        },
        delayed::iota(kN));
    {
      recovery::scoped_boundary_faults inj(
          recovery::boundary_fault_kind::fault, 5);
      EXPECT_THROW((void)recovery::to_array(xs, ck.slot<counted>(0)),
                   recovery::boundary_fault);
    }
    const parray<counted>& a = recovery::to_array(xs, ck.slot<counted>(0));
    ASSERT_EQ(a.size(), kN);
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(a[i].v, static_cast<std::uint64_t>(i * 13)) << "at " << i;
    }
  }
  EXPECT_EQ(counted::ctors().load() - c0, counted::dtors().load() - d0);
}

// --- salvage of completed operations ----------------------------------------

// Re-entering an op whose slot already completed must return the SAME
// storage without executing anything — the property that lets a multi-op
// job fail in stage 2 and resume without touching stage 1.
TEST(ResumeSalvage, CompletedOpReturnsRetainedStorageWithoutExecution) {
  pbds::sched::scoped_sequential g;
  pbds::scoped_block_size bs(kBlk);
  recovery::job_checkpoint ck;
  auto& slot = ck.slot<std::uint64_t>(0);
  auto xs = delayed::tabulate(
      kN, [](std::size_t i) { return static_cast<std::uint64_t>(i + 1); });
  const parray<std::uint64_t>& first = recovery::to_array(xs, slot);
  std::uint64_t execs = slot.ledger().executions();
  EXPECT_EQ(execs, kBlocks);
  const parray<std::uint64_t>& second = recovery::to_array(xs, slot);
  EXPECT_EQ(&first, &second) << "completed op must return retained storage";
  EXPECT_EQ(slot.ledger().executions(), execs)
      << "re-entry of a completed op executed blocks";
  EXPECT_GE(slot.ledger().salvaged(), kBlocks);
}

// --- the kill switch --------------------------------------------------------

TEST(ResumeDisable, ScopedDisableForcesFreshRun) {
  pbds::sched::scoped_sequential g;
  pbds::scoped_block_size bs(kBlk);
  recovery::job_checkpoint ck;
  auto& slot = ck.slot<std::uint64_t>(0);
  auto xs = delayed::map(
      [](std::size_t i) { return static_cast<std::uint64_t>(i ^ 42); },
      delayed::iota(kN));
  {
    recovery::scoped_boundary_faults inj(recovery::boundary_fault_kind::fault,
                                         4);
    EXPECT_THROW((void)recovery::to_array(xs, slot),
                 recovery::boundary_fault);
  }
  EXPECT_EQ(slot.ledger().blocks_complete(), 4u);
  std::uint64_t execs_before = slot.ledger().executions();
  {
    recovery::scoped_resume_disable off;
    ASSERT_FALSE(recovery::resume_enabled());
    const auto& a = recovery::to_array(xs, slot);
    ASSERT_EQ(a.size(), kN);
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(a[i], static_cast<std::uint64_t>(i ^ 42)) << "at " << i;
    }
  }
  // Disabled resume discards the 4 completed blocks: the fresh run executes
  // ALL kBlocks again.
  EXPECT_EQ(slot.ledger().executions() - execs_before, kBlocks)
      << "resume-disable must discard prior progress";
}

// --- cooperative-cancellation collapse --------------------------------------
//
// Nested joins inside a cancelled region bail and RETURN (the root
// rethrows only at region exit), so without an explicit guard a
// checkpointed op would hand its caller incomplete storage — and, worse,
// bind ledger geometry computed by a collapsed upstream pipeline. Both
// guards must surface attempt_interrupted instead.

TEST(ResumeCancellation, EntryIntoCancelledRegionRefusesToBind) {
  pbds::sched::scoped_sequential g;
  pbds::scoped_block_size bs(kBlk);
  recovery::job_checkpoint ck;
  auto& slot = ck.slot<std::uint64_t>(0);
  auto xs = delayed::tabulate(
      kN, [](std::size_t i) { return static_cast<std::uint64_t>(i); });
  pbds::sched::cancel_scope root;
  ASSERT_TRUE(root.is_root());
  pbds::sched::current_cancel()->capture(
      std::make_exception_ptr(std::runtime_error("upstream failure")));
  ASSERT_TRUE(pbds::sched::cancellation_requested());
  EXPECT_THROW((void)recovery::to_array(xs, slot),
               recovery::attempt_interrupted);
  // The op must bail before binding: no storage, no executions.
  EXPECT_EQ(slot.snapshot().blocks_total, 0u);
  EXPECT_EQ(slot.ledger().executions(), 0u);
}

TEST(ResumeCancellation, MidOpCollapseThrowsInsteadOfReturningIncomplete) {
  // Sequential mode runs a plain loop with no bail points, so collapse
  // can only happen under a forking scheduler; the deterministic one
  // makes it reproducible: leaves run atomically, so the capture during
  // the 4th executed block always leaves the remaining blocks to bail.
  pbds::sched::scoped_deterministic g(17, 4);
  pbds::scoped_block_size bs(kBlk);
  recovery::job_checkpoint ck;
  auto& slot = ck.slot<std::uint64_t>(0);
  std::atomic<std::size_t> pulls{0};
  // Trivial element type and no armed injectors: this drives the
  // unguarded fast path, whose apply collapses silently on cancellation.
  auto xs = delayed::tabulate(kN, [&](std::size_t i) {
    if (pulls.fetch_add(1, std::memory_order_relaxed) == 3 * kBlk) {
      pbds::sched::current_cancel()->capture(
          std::make_exception_ptr(std::runtime_error("sibling failed")));
    }
    return static_cast<std::uint64_t>(i * 3);
  });
  {
    pbds::sched::cancel_scope root;
    ASSERT_TRUE(root.is_root());
    EXPECT_THROW((void)recovery::to_array(xs, slot),
                 recovery::attempt_interrupted);
    EXPECT_LT(slot.ledger().blocks_complete(), kBlocks);
  }
  // Outside the cancelled region the same checkpoint resumes to a
  // complete, correct result.
  const auto& a = recovery::to_array(xs, slot);
  ASSERT_EQ(a.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i], static_cast<std::uint64_t>(i * 3)) << "at " << i;
  }
  EXPECT_EQ(slot.ledger().blocks_complete(), kBlocks);
}

// --- ledger unit behavior ---------------------------------------------------

TEST(BlockLedger, GeometryRebindAndRedoFlag) {
  recovery::block_ledger led;
  EXPECT_FALSE(led.bound());
  led.bind(1000, 256);
  EXPECT_TRUE(led.bound());
  EXPECT_EQ(led.num_blocks(), 4u);
  EXPECT_EQ(led.block_length(3), 1000u - 3 * 256u);  // ragged tail
  EXPECT_FALSE(led.mark_started(1));  // first start: not a redo
  led.mark_complete(1);
  EXPECT_TRUE(led.is_complete(1));
  EXPECT_EQ(led.blocks_complete(), 1u);
  EXPECT_EQ(led.elements_complete(), 256u);
  // Same-geometry rebind preserves completion (this IS resume).
  led.bind(1000, 256);
  EXPECT_TRUE(led.is_complete(1));
  // Re-running a started block reports a redo.
  EXPECT_TRUE(led.mark_started(1));
  EXPECT_EQ(led.redone(), 1u);
  // Different geometry discards completion but keeps cumulative stats.
  led.bind(1000, 128);
  EXPECT_EQ(led.num_blocks(), 8u);
  EXPECT_FALSE(led.is_complete(1));
  EXPECT_EQ(led.blocks_complete(), 0u);
  EXPECT_EQ(led.executions(), 2u);
  recovery::progress p = led.snapshot(8);
  EXPECT_EQ(p.blocks_total, 8u);
  EXPECT_EQ(p.bytes_complete, 0u);
}

TEST(JobCheckpoint, SlotTypeMismatchThrows) {
  recovery::job_checkpoint ck;
  (void)ck.slot<std::uint64_t>(0);
  EXPECT_THROW((void)ck.slot<double>(0), std::logic_error);
  (void)ck.slot<double>(1);  // fresh key: fine
}

}  // namespace
