// Compile-time tests: the library's types model the concepts they claim,
// and non-models are rejected. Everything here is static_assert — if this
// file compiles, the tests pass; the single runtime TEST keeps ctest aware
// of the file.
#include <gtest/gtest.h>

#include <vector>

#include "core/concepts.hpp"
#include "core/delayed.hpp"
#include "stream/streams.hpp"

namespace {

using namespace pbds;  // NOLINT
namespace d = pbds::delayed;
namespace st = pbds::stream;

// --- Stream -----------------------------------------------------------------

using tab_stream = st::tabulate_stream<std::size_t (*)(std::size_t)>;
static_assert(Stream<tab_stream>);
static_assert(Stream<st::pointer_stream<int>>);
static_assert(Stream<st::map_stream<tab_stream, int (*)(std::size_t)>>);
static_assert(Stream<st::zip_stream<tab_stream, tab_stream>>);
static_assert(!Stream<int>);
static_assert(!Stream<std::vector<int>>);

// --- RandomAccessSequence ------------------------------------------------------

static_assert(RandomAccessSequence<parray<int>>);
static_assert(RandomAccessSequence<std::vector<double>>);
static_assert(!RandomAccessSequence<int>);

// RADs are random-access; streams are not.
using iota_rad = decltype(d::iota(10));
static_assert(RandomAccessSequence<iota_rad>);
static_assert(!RandomAccessSequence<tab_stream>);

// --- DelayedSequence -------------------------------------------------------------

static_assert(DelayedSequence<iota_rad>);
static_assert(is_rad_v<iota_rad>);
using mapped_rad = decltype(d::map(std::declval<int (*)(std::size_t)>(),
                                   d::iota(10)));
static_assert(DelayedSequence<mapped_rad>);
static_assert(!DelayedSequence<parray<int>>);
static_assert(!DelayedSequence<std::vector<int>>);

// A scan output is a BID and still a delayed sequence, but NOT
// random-access — the defining asymmetry of the two representations.
using scan_bid = decltype(d::scan(std::declval<std::size_t (*)(std::size_t,
                                                               std::size_t)>(),
                                  std::size_t{0}, d::iota(10))
                              .first);
static_assert(DelayedSequence<scan_bid>);
static_assert(is_bid_v<scan_bid>);
static_assert(!RandomAccessSequence<scan_bid>);

// The BID's block payload models Stream, and its block function models
// BlockFunction.
static_assert(Stream<typename scan_bid::stream_type>);
static_assert(BlockFunction<typename scan_bid::block_fn_type>);

// --- IndexFunction -----------------------------------------------------------------

static_assert(IndexFunction<int (*)(std::size_t)>);
static_assert(!IndexFunction<int>);

TEST(Concepts, CompileTimeChecksHold) { SUCCEED(); }

}  // namespace
