// Integration tests: every benchmark kernel produces correct results under
// all three library policies (array / rad / delay), on small inputs and
// across block sizes.
#include <gtest/gtest.h>

#include <string_view>

#include "benchmarks/bestcut.hpp"
#include "benchmarks/bfs.hpp"
#include "benchmarks/bignum_add.hpp"
#include "benchmarks/grep.hpp"
#include "benchmarks/integrate.hpp"
#include "benchmarks/linearrec.hpp"
#include "benchmarks/linefit.hpp"
#include "benchmarks/mcss.hpp"
#include "benchmarks/policies.hpp"
#include "benchmarks/primes.hpp"
#include "benchmarks/quickhull.hpp"
#include "benchmarks/spmv.hpp"
#include "benchmarks/tokens.hpp"
#include "benchmarks/wc.hpp"
#include "core/block.hpp"
#include "text/text.hpp"

namespace {

using namespace pbds;          // NOLINT
using namespace pbds::bench;   // NOLINT

class KernelsTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  scoped_block_size guard_{GetParam()};
};

TEST_P(KernelsTest, Bestcut) {
  auto events = bestcut_input(10'000);
  double want = bestcut_reference(events);
  EXPECT_DOUBLE_EQ(bestcut<array_policy>(events), want);
  EXPECT_DOUBLE_EQ(bestcut<rad_policy>(events), want);
  EXPECT_DOUBLE_EQ(bestcut<delay_policy>(events), want);
}

TEST_P(KernelsTest, Bfs) {
  auto g = graph::rmat(10, 8'000);
  graph::vertex source = 0;
  auto pa = bfs<array_policy>(g, source);
  auto pr = bfs<rad_policy>(g, source);
  auto pd = bfs<delay_policy>(g, source);
  auto as_fn = [](const parray<std::atomic<graph::vertex>>& p) {
    return [&p](std::size_t v) {
      return p[v].load(std::memory_order_relaxed);
    };
  };
  EXPECT_TRUE(graph::check_bfs_tree(g, source, as_fn(pa)));
  EXPECT_TRUE(graph::check_bfs_tree(g, source, as_fn(pr)));
  EXPECT_TRUE(graph::check_bfs_tree(g, source, as_fn(pd)));
}

TEST_P(KernelsTest, BignumAdd) {
  for (std::size_t n : {1u, 100u, 9'999u}) {
    auto a = bignum::random_bignum(n, 1);
    auto b = bignum::random_bignum(n, 2);
    auto want = bignum::reference_add(a, b);
    auto check = [&](const bignum_sum& got) {
      ASSERT_EQ(got.digits.size(), n);
      for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(got.digits[i], want[i]);
      ASSERT_EQ(got.carry_out, want[n]);
    };
    check(bignum_add<array_policy>(a, b));
    check(bignum_add<rad_policy>(a, b));
    check(bignum_add<delay_policy>(a, b));
  }
}

TEST_P(KernelsTest, BignumAddWorstCaseCarry) {
  std::size_t n = 5'000;
  auto a = bignum::all_ones(n);
  auto b = bignum::random_bignum(n, 3);
  auto want = bignum::reference_add(a, b);
  auto got = bignum_add<delay_policy>(a, b);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(got.digits[i], want[i]);
  ASSERT_EQ(got.carry_out, want[n]);
}

TEST_P(KernelsTest, Primes) {
  for (std::int64_t n : {1, 2, 3, 10, 97, 10'000}) {
    std::size_t want = reference_prime_count(n);
    auto pa = primes<array_policy>(n);
    auto pr = primes<rad_policy>(n);
    auto pd = primes<delay_policy>(n);
    EXPECT_EQ(pa.size(), want) << "array n=" << n;
    EXPECT_EQ(pr.size(), want) << "rad n=" << n;
    EXPECT_EQ(pd.size(), want) << "delay n=" << n;
    for (std::size_t i = 0; i < want; ++i) {
      ASSERT_EQ(pa[i], pd[i]);
      ASSERT_EQ(pr[i], pd[i]);
    }
  }
}

TEST_P(KernelsTest, Tokens) {
  auto text = text::random_words(20'000, 7.0);
  auto want = tokens_reference(text);
  EXPECT_EQ(tokens<array_policy>(text), want);
  EXPECT_EQ(tokens<rad_policy>(text), want);
  EXPECT_EQ(tokens<delay_policy>(text), want);
}

TEST_P(KernelsTest, Grep) {
  auto text = text::random_lines(30'000);
  std::string_view pattern = "ab";
  auto want = grep_reference(text, pattern);
  EXPECT_GT(want.matching_lines, 0u);
  EXPECT_EQ(grep<array_policy>(text, pattern), want);
  EXPECT_EQ(grep<rad_policy>(text, pattern), want);
  EXPECT_EQ(grep<delay_policy>(text, pattern), want);
}

TEST_P(KernelsTest, Integrate) {
  std::size_t n = 200'000;
  double exact = integrate_exact();
  double ga = integrate<array_policy>(n);
  double gr = integrate<rad_policy>(n);
  double gd = integrate<delay_policy>(n);
  // Identical blocking => identical summation order => identical bits.
  EXPECT_EQ(ga, gr);
  EXPECT_EQ(gr, gd);
  EXPECT_NEAR(gd, exact, 1e-3 * exact);
}

TEST_P(KernelsTest, Linearrec) {
  auto coefs = linearrec_input(30'000);
  auto want = linearrec_reference(coefs);
  auto ra = linearrec<array_policy>(coefs);
  auto rr = linearrec<rad_policy>(coefs);
  auto rd = linearrec<delay_policy>(coefs);
  ASSERT_EQ(ra.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    // The blocked scan reassociates the affine composition; allow small
    // floating-point divergence from the sequential reference.
    ASSERT_NEAR(rd[i], want[i], 1e-9) << i;
    ASSERT_EQ(ra[i], rd[i]) << i;  // identical blocking across libraries
    ASSERT_EQ(rr[i], rd[i]) << i;
  }
}

TEST_P(KernelsTest, Linefit) {
  auto pts = linefit_input(50'000);
  auto want = linefit_reference(pts);
  for (auto got : {linefit<array_policy>(pts), linefit<rad_policy>(pts),
                   linefit<delay_policy>(pts)}) {
    EXPECT_NEAR(got.slope, want.slope, 1e-9);
    EXPECT_NEAR(got.intercept, want.intercept, 1e-9);
    EXPECT_NEAR(got.slope, 2.0, 0.01);     // the generating line
    EXPECT_NEAR(got.intercept, 1.0, 0.01);
  }
}

TEST_P(KernelsTest, Mcss) {
  auto a = mcss_input(50'000);
  auto want = mcss_reference(a);
  EXPECT_EQ(mcss<array_policy>(a), want);
  EXPECT_EQ(mcss<rad_policy>(a), want);
  EXPECT_EQ(mcss<delay_policy>(a), want);
}

TEST_P(KernelsTest, Quickhull) {
  auto pts = geom::points_in_disk(20'000);
  std::size_t want = quickhull_reference(pts);
  EXPECT_GT(want, 3u);
  EXPECT_EQ(quickhull<array_policy>(pts), want);
  EXPECT_EQ(quickhull<rad_policy>(pts), want);
  EXPECT_EQ(quickhull<delay_policy>(pts), want);
}

TEST_P(KernelsTest, Spmv) {
  auto m = spmv_input(2'000, 20);
  auto x = spmv_vector(2'000);
  auto want = spmv_reference(m, x);
  auto ya = spmv<array_policy>(m, x);
  auto yr = spmv<rad_policy>(m, x);
  auto yd = spmv<delay_policy>(m, x);
  ASSERT_EQ(ya.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(yd[i], want[i], 1e-9);
    ASSERT_EQ(ya[i], yd[i]);
    ASSERT_EQ(yr[i], yd[i]);
  }
}

TEST_P(KernelsTest, Wc) {
  auto text = text::random_lines(40'000);
  auto want = text::reference_wc(text);
  EXPECT_EQ(wc<array_policy>(text), want);
  EXPECT_EQ(wc<rad_policy>(text), want);
  EXPECT_EQ(wc<delay_policy>(text), want);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, KernelsTest,
                         ::testing::Values(1, 16, 257, 2048),
                         [](const auto& info) {
                           return "B" + std::to_string(info.param);
                         });

}  // namespace
