// Unit tests for the text substrate (generators, contains, wc reference).
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "text/text.hpp"

namespace {

namespace t = pbds::text;
using pbds::parray;

parray<char> from_string(const std::string& s) {
  return parray<char>::tabulate(s.size(),
                                [&](std::size_t i) { return s[i]; });
}

TEST(Text, IsSpace) {
  EXPECT_TRUE(t::is_space(' '));
  EXPECT_TRUE(t::is_space('\n'));
  EXPECT_TRUE(t::is_space('\t'));
  EXPECT_FALSE(t::is_space('a'));
  EXPECT_FALSE(t::is_space('0'));
}

TEST(Text, ContainsBasics) {
  const char* s = "hello world";
  EXPECT_TRUE(t::contains(s, 0, 11, "world"));
  EXPECT_TRUE(t::contains(s, 0, 11, "hello"));
  EXPECT_FALSE(t::contains(s, 0, 11, "worlds"));
  EXPECT_FALSE(t::contains(s, 0, 4, "hello"));  // range too short
  EXPECT_TRUE(t::contains(s, 6, 11, "world"));
  EXPECT_FALSE(t::contains(s, 7, 11, "world"));
  EXPECT_TRUE(t::contains(s, 3, 3, ""));  // empty pattern matches
}

TEST(Text, ContainsDoesNotCrossRangeEnd) {
  const char* s = "abcabc";
  // "cab" sits at positions 2..4, which does not fit inside [0, 4).
  EXPECT_FALSE(t::contains(s, 0, 4, "cab"));
  EXPECT_TRUE(t::contains(s, 0, 5, "cab"));
  // "abca" (positions 0..3) fits exactly inside [0, 4).
  EXPECT_TRUE(t::contains(s, 0, 4, "abca"));
  EXPECT_FALSE(t::contains(s, 1, 4, "abca"));
}

TEST(Text, ReferenceWcKnownStrings) {
  auto c1 = t::reference_wc(from_string("one two three\n"));
  EXPECT_EQ(c1.lines, 1u);
  EXPECT_EQ(c1.words, 3u);
  EXPECT_EQ(c1.bytes, 14u);

  auto c2 = t::reference_wc(from_string("  leading  and   trailing  "));
  EXPECT_EQ(c2.lines, 0u);
  EXPECT_EQ(c2.words, 3u);

  auto c3 = t::reference_wc(from_string("\n\n\n"));
  EXPECT_EQ(c3.lines, 3u);
  EXPECT_EQ(c3.words, 0u);

  auto c4 = t::reference_wc(from_string(""));
  EXPECT_EQ(c4.lines, 0u);
  EXPECT_EQ(c4.words, 0u);
  EXPECT_EQ(c4.bytes, 0u);
}

TEST(Text, RandomWordsShape) {
  auto corpus = t::random_words(100'000, 8.0, 3);
  EXPECT_EQ(corpus.size(), 100'000u);
  std::size_t spaces = 0;
  for (char c : corpus) {
    ASSERT_TRUE(c == ' ' || (c >= 'a' && c <= 'z'));
    spaces += c == ' ';
  }
  // ~1/8 of positions are spaces.
  EXPECT_NEAR(static_cast<double>(spaces) / 100'000, 1.0 / 8.0, 0.01);
}

TEST(Text, RandomLinesShape) {
  auto corpus = t::random_lines(200'000, 30.0, 8.0, 4);
  std::size_t newlines = 0;
  for (char c : corpus) newlines += c == '\n';
  EXPECT_NEAR(static_cast<double>(newlines) / 200'000, 1.0 / 30.0, 0.005);
}

TEST(Text, GeneratorsAreDeterministic) {
  auto a = t::random_words(1000, 7.0, 5);
  auto b = t::random_words(1000, 7.0, 5);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), 1000), 0);
}

}  // namespace
