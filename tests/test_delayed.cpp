// Unit tests for the block-delayed sequence library (the paper's
// contribution): per-operation semantics, laziness (what is and is not
// evaluated eagerly), and the allocation behaviour the cost semantics
// promises.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <optional>
#include <vector>

#include "core/delayed.hpp"
#include "memory/tracking.hpp"

namespace {

namespace d = pbds::delayed;
using pbds::parray;
using pbds::scoped_block_size;

template <typename Seq>
std::vector<typename std::decay_t<decltype(d::as_seq(
    std::declval<Seq>()))>::value_type>
collect(const Seq& s) {
  auto arr = d::to_array(s);
  return {arr.begin(), arr.end()};
}

auto plus = [](auto a, auto b) { return a + b; };

TEST(Delayed, TabulateIsLazy) {
  std::atomic<int> calls{0};
  auto t = d::tabulate(1000, [&calls](std::size_t i) {
    calls++;
    return i;
  });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(d::length(t), 1000u);
  EXPECT_EQ(t[5], 5u);
  EXPECT_EQ(calls.load(), 1);
}

TEST(Delayed, MapOverRadIsLazyAndComposes) {
  std::atomic<int> calls{0};
  auto t = d::tabulate(100, [](std::size_t i) { return (int)i; });
  auto m = d::map(
      [&calls](int x) {
        calls++;
        return x * 2;
      },
      t);
  auto m2 = d::map([](int x) { return x + 1; }, m);
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(m2[10], 21);
  EXPECT_EQ(calls.load(), 1);
}

TEST(Delayed, IotaAndView) {
  auto v = collect(d::iota(5));
  EXPECT_EQ(v, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  auto arr = parray<int>::tabulate(4, [](std::size_t i) { return (int)i; });
  EXPECT_EQ(collect(d::view(arr)), (std::vector<int>{0, 1, 2, 3}));
}

TEST(Delayed, ZipRadRadStaysRandomAccess) {
  auto a = d::iota(10);
  auto b = d::map([](std::size_t i) { return i * i; }, d::iota(10));
  auto z = d::zip(a, b);
  static_assert(pbds::is_rad_v<decltype(z)>);
  EXPECT_EQ(z[3], (std::pair<std::size_t, std::size_t>(3, 9)));
}

TEST(Delayed, ZipWithBidGoesBlockwise) {
  scoped_block_size guard(4);
  auto [pre, tot] = d::scan(plus, std::size_t{0}, d::iota(10));
  auto z = d::zip(pre, d::iota(10));
  static_assert(pbds::is_bid_v<decltype(z)>);
  auto v = collect(z);
  ASSERT_EQ(v.size(), 10u);
  std::size_t acc = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(v[i], (std::pair<std::size_t, std::size_t>(acc, i)));
    acc += i;
  }
  EXPECT_EQ(tot, 45u);
}

TEST(Delayed, ReduceMatchesSequentialFold) {
  scoped_block_size guard(7);
  auto t = d::tabulate(100, [](std::size_t i) { return (std::int64_t)i; });
  EXPECT_EQ(d::reduce(plus, std::int64_t{0}, t), 4950);
}

TEST(Delayed, ReduceEmptyReturnsIdentity) {
  EXPECT_EQ(d::reduce(plus, 42, d::tabulate(0, [](std::size_t) { return 1; })),
            42);
}

TEST(Delayed, ScanExclusiveSemantics) {
  scoped_block_size guard(3);
  auto t = d::tabulate(7, [](std::size_t i) { return (int)i + 1; });
  auto [pre, total] = d::scan(plus, 0, t);
  EXPECT_EQ(total, 28);
  EXPECT_EQ(collect(pre), (std::vector<int>{0, 1, 3, 6, 10, 15, 21}));
}

TEST(Delayed, ScanInclusiveSemantics) {
  scoped_block_size guard(3);
  auto t = d::tabulate(7, [](std::size_t i) { return (int)i + 1; });
  auto [inc, total] = d::scan_inclusive(plus, 0, t);
  EXPECT_EQ(total, 28);
  EXPECT_EQ(collect(inc), (std::vector<int>{1, 3, 6, 10, 15, 21, 28}));
}

TEST(Delayed, ScanOutputIsDelayedAndRereadsInput) {
  // The paper's recompute tradeoff: phase 1 reads everything once; phase 3
  // (delayed) reads again only when the output is consumed.
  scoped_block_size guard(8);
  std::atomic<int> calls{0};
  auto t = d::tabulate(64, [&calls](std::size_t i) {
    calls++;
    return (int)i;
  });
  auto [pre, total] = d::scan(plus, 0, t);
  EXPECT_EQ(calls.load(), 64);  // phase 1 only
  (void)total;
  auto arr = d::to_array(pre);  // phase 3 runs now
  EXPECT_EQ(calls.load(), 128);
  EXPECT_EQ(arr[63], 63 * 62 / 2);
}

TEST(Delayed, ScanAllocatesOnlyPartials) {
  // Cost semantics (Fig. 11): eager allocation of scan is |X|/B, not |X|.
  scoped_block_size guard(64);
  std::size_t n = 64 * 64;  // 64 blocks
  auto t = d::tabulate(n, [](std::size_t i) { return (std::int64_t)i; });
  pbds::memory::space_meter meter;
  auto [pre, total] = d::scan(plus, std::int64_t{0}, t);
  (void)total;
  // sums + partials: 2 * 64 * 8 bytes, far below n * 8.
  EXPECT_LE(meter.allocated_bytes(),
            static_cast<std::int64_t>(4 * (n / 64) * sizeof(std::int64_t)));
}

TEST(Delayed, FilterKeepsOrderAcrossBlocks) {
  scoped_block_size guard(5);
  auto t = d::tabulate(23, [](std::size_t i) { return (int)i; });
  auto f = d::filter([](int x) { return x % 2 == 0; }, t);
  EXPECT_EQ(d::length(f), 12u);
  EXPECT_EQ(collect(f),
            (std::vector<int>{0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22}));
}

TEST(Delayed, FilterAllAndNone) {
  scoped_block_size guard(4);
  auto t = d::tabulate(10, [](std::size_t i) { return (int)i; });
  EXPECT_EQ(d::length(d::filter([](int) { return true; }, t)), 10u);
  EXPECT_EQ(d::length(d::filter([](int) { return false; }, t)), 0u);
  EXPECT_TRUE(collect(d::filter([](int) { return false; }, t)).empty());
}

TEST(Delayed, FilterAllocatesSurvivorsOnly) {
  // Fig. 11: filter's eager allocation is |Y| + |X|/B, not |X|.
  scoped_block_size guard(256);
  std::size_t n = 1 << 16;
  auto t = d::tabulate(n, [](std::size_t i) { return (std::int64_t)i; });
  pbds::memory::space_meter meter;
  auto f = d::filter([](std::int64_t x) { return x % 100 == 0; }, t);
  EXPECT_EQ(d::length(f), n / 100 + 1);
  // Survivors ~ n/100 int64s, plus offsets ~ (n/256) size_ts, plus
  // geometric grow slack; well below n * 8.
  EXPECT_LE(meter.allocated_bytes(), static_cast<std::int64_t>(n));
}

TEST(Delayed, FilterOpTransformsSurvivors) {
  scoped_block_size guard(3);
  auto t = d::tabulate(10, [](std::size_t i) { return (int)i; });
  auto f = d::filter_op(
      [](int x) -> std::optional<double> {
        if (x % 3 == 0) return x * 1.5;
        return std::nullopt;
      },
      t);
  EXPECT_EQ(collect(f), (std::vector<double>{0.0, 4.5, 9.0, 13.5}));
}

TEST(Delayed, FilterOpRunsEffectExactlyOncePerElement) {
  // BFS's tryVisit relies on this (Fig. 6).
  scoped_block_size guard(4);
  std::atomic<int> calls{0};
  auto t = d::tabulate(100, [](std::size_t i) { return (int)i; });
  auto f = d::filter_op(
      [&calls](int x) -> std::optional<int> {
        calls++;
        if (x % 2 == 0) return x;
        return std::nullopt;
      },
      t);
  EXPECT_EQ(calls.load(), 100);  // packing is eager, exactly once
  auto v = collect(f);           // draining does NOT re-run the effect
  EXPECT_EQ(calls.load(), 100);
  EXPECT_EQ(v.size(), 50u);
}

TEST(Delayed, FlattenConcatenatesNestedRads) {
  scoped_block_size guard(4);
  auto nested = d::map(
      [](std::size_t i) {
        return d::tabulate(i, [i](std::size_t j) { return 10 * i + j; });
      },
      d::iota(5));
  auto flat = d::flatten(nested);
  EXPECT_EQ(d::length(flat), 0u + 1 + 2 + 3 + 4);
  EXPECT_EQ(collect(flat),
            (std::vector<std::size_t>{10, 20, 21, 30, 31, 32, 40, 41, 42, 43}));
}

TEST(Delayed, FlattenWithEmptyInners) {
  scoped_block_size guard(2);
  auto nested = d::map(
      [](std::size_t i) {
        std::size_t len = (i % 2 == 0) ? 0 : 2;
        return d::tabulate(len, [i](std::size_t j) { return i * 100 + j; });
      },
      d::iota(6));
  EXPECT_EQ(collect(d::flatten(nested)),
            (std::vector<std::size_t>{100, 101, 300, 301, 500, 501}));
}

TEST(Delayed, FlattenAllEmpty) {
  auto nested = d::map(
      [](std::size_t) { return d::tabulate(0, [](std::size_t) { return 0; }); },
      d::iota(4));
  EXPECT_EQ(d::length(d::flatten(nested)), 0u);
}

TEST(Delayed, FlattenOfBidInnersForcesThem) {
  scoped_block_size guard(4);
  // Inner sequences are scan outputs (BIDs); flatten must force them.
  auto nested = d::map(
      [](std::size_t i) {
        auto [pre, tot] =
            d::scan(plus, std::size_t{0},
                    d::tabulate(i + 1, [](std::size_t j) { return j + 1; }));
        (void)tot;
        return pre;
      },
      d::iota(3));
  auto flat = d::flatten(nested);
  // i=0: [0]; i=1: [0,1]; i=2: [0,1,3]
  EXPECT_EQ(collect(flat), (std::vector<std::size_t>{0, 0, 1, 0, 1, 3}));
}

TEST(Delayed, ForceMaterializesOnce) {
  std::atomic<int> calls{0};
  auto t = d::tabulate(50, [&calls](std::size_t i) {
    calls++;
    return (int)i;
  });
  auto f = d::force(t);
  EXPECT_EQ(calls.load(), 50);
  // Consuming the forced RAD twice does not re-evaluate.
  EXPECT_EQ(d::reduce(plus, 0, f), 1225);
  EXPECT_EQ(d::reduce(plus, 0, f), 1225);
  EXPECT_EQ(calls.load(), 50);
}

TEST(Delayed, ForcedSequenceOutlivesSource) {
  // force() hands back shared ownership: safe after the source is gone.
  auto f = [] {
    auto arr = parray<int>::tabulate(10, [](std::size_t i) { return (int)i; });
    return d::force(d::map([](int x) { return x + 1; }, arr));
  }();
  EXPECT_EQ(d::reduce(plus, 0, f), 55);
}

TEST(Delayed, ApplyEachVisitsEverythingOnce) {
  scoped_block_size guard(8);
  std::vector<std::atomic<int>> hits(100);
  auto t = d::iota(100);
  d::apply_each(t, [&hits](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Delayed, ToArrayOfBidWritesAtCorrectOffsets) {
  scoped_block_size guard(3);
  auto [pre, tot] = d::scan(plus, 0, d::tabulate(10, [](std::size_t) {
                              return 1;
                            }));
  (void)tot;
  auto arr = d::to_array(d::map([](int x) { return x * 2; }, pre));
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(arr[i], 2 * static_cast<int>(i));
}

TEST(Delayed, ConveniencesSumCountAllAny) {
  auto t = d::tabulate(10, [](std::size_t i) { return (int)i; });
  EXPECT_EQ(d::sum(t), 45);
  EXPECT_EQ(d::count_if([](int x) { return x > 6; }, t), 3u);
  EXPECT_TRUE(d::all_of([](int x) { return x < 10; }, t));
  EXPECT_FALSE(d::all_of([](int x) { return x < 9; }, t));
  EXPECT_TRUE(d::any_of([](int x) { return x == 7; }, t));
  EXPECT_FALSE(d::any_of([](int x) { return x == 17; }, t));
}

TEST(Delayed, DelayedValuesAreSelfContained) {
  // A BID can be returned from the scope that created it; shared_ptrs keep
  // the packed blocks and offsets alive.
  scoped_block_size guard(4);
  auto make = [] {
    auto t = d::tabulate(20, [](std::size_t i) { return (int)i; });
    return d::filter([](int x) { return x % 2 == 0; }, t);
  };
  auto f = make();
  EXPECT_EQ(d::length(f), 10u);
  EXPECT_EQ(d::reduce(plus, 0, f), 90);
}

TEST(Delayed, PipelineFusedThroughScanScan) {
  // scan followed by scan — a case index fusion alone cannot handle (§1).
  scoped_block_size guard(4);
  auto t = d::tabulate(8, [](std::size_t) { return 1; });
  auto [s1, t1] = d::scan(plus, 0, t);
  auto [s2, t2] = d::scan(plus, 0, s1);
  EXPECT_EQ(t1, 8);
  EXPECT_EQ(t2, 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);  // sum of s1's elements
  EXPECT_EQ(collect(s2), (std::vector<int>{0, 0, 1, 3, 6, 10, 15, 21}));
}

}  // namespace
